"""Routing abstractions: local (per-layer) routing and turn models.

The paper's routing algorithm (Sec. V-D) composes *local* routing inside
each chiplet and inside the interposer with a static binding between
chiplet routers and boundary routers.  Local routing is expressed here as
an interface so each layer can use XY on healthy meshes and table-driven
up*/down* on faulty ones — exactly the modular flexibility the paper
claims for UPP.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Tuple

from repro.noc.flit import Port

#: mesh movement ports
MESH_DIRS = (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)


class LocalRouting(Protocol):
    """Routing within one layer (a chiplet's mesh or the interposer mesh)."""

    def next_port(self, rid: int, in_port: Port, dst: int) -> Port:
        """The output port toward ``dst`` (same layer as ``rid``)."""
        ...


class TurnModel:
    """Predicate over (router, in_port, out_port) triples.

    ``in_port`` is the side the flit *entered through* (so a flit that
    entered via ``EAST`` is travelling westward).  Vertical and local ports
    behave like injection/ejection points unless a subclass restricts them.
    """

    def allowed(self, rid: int, in_port: Port, out_port: Port) -> bool:
        """Is the (in -> out) turn at router ``rid`` permitted?"""
        raise NotImplementedError

    def _no_u_turn(self, in_port: Port, out_port: Port) -> bool:
        return in_port != out_port or in_port == Port.LOCAL


class XYTurnModel(TurnModel):
    """Dimension-order turn rules: X movement may turn into Y, never the
    reverse.  Entry points (LOCAL / DOWN / UP) may start in any dimension;
    exit points (LOCAL / DOWN / UP) are reachable from any dimension."""

    _X_IN = (Port.EAST, Port.WEST)
    _Y_IN = (Port.NORTH, Port.SOUTH)

    def allowed(self, rid: int, in_port: Port, out_port: Port) -> bool:
        if not self._no_u_turn(in_port, out_port):
            return False
        if in_port not in MESH_DIRS:
            return True  # injection / vertical entry: any start direction
        if out_port not in MESH_DIRS:
            return True  # ejection / vertical exit
        if in_port in self._Y_IN:
            # moving in Y: may only continue straight
            return out_port in self._Y_IN
        # moving in X: straight or turn into Y
        return True


class RestrictedTurnModel(TurnModel):
    """A base model minus an explicit set of (router, in, out) turns.

    Used by composable routing: unidirectional turn restrictions placed on
    boundary routers (Fig. 2a) on top of the chiplet's XY rules."""

    def __init__(self, base: TurnModel, restrictions: Iterable[Tuple[int, Port, Port]]):
        self.base = base
        self.restrictions = frozenset(restrictions)

    def allowed(self, rid: int, in_port: Port, out_port: Port) -> bool:
        if (rid, in_port, out_port) in self.restrictions:
            return False
        return self.base.allowed(rid, in_port, out_port)


class UpDownTurnModel(TurnModel):
    """Up*/down* turn rules over a spanning tree of one layer.

    A link is *up* when it points toward the root (lower ``(depth, rid)``);
    legal paths take zero or more up links followed by zero or more down
    links, i.e. the down->up turn is forbidden.  This is the
    topology-agnostic local routing (ARIADNE-style) used on faulty layers.
    """

    def __init__(self, depth: dict, neighbor_of: dict):
        #: depth[rid] in the BFS spanning tree
        self.depth = depth
        #: neighbor_of[(rid, port)] -> neighbour rid over a healthy link
        self.neighbor_of = neighbor_of

    def _is_up(self, src: int, dst: int) -> bool:
        return (self.depth[dst], dst) < (self.depth[src], src)

    def allowed(self, rid: int, in_port: Port, out_port: Port) -> bool:
        if not self._no_u_turn(in_port, out_port):
            return False
        if in_port not in MESH_DIRS or out_port not in MESH_DIRS:
            return True
        prev = self.neighbor_of.get((rid, in_port))
        nxt = self.neighbor_of.get((rid, out_port))
        if prev is None or nxt is None:
            return False  # faulty or absent link
        # the link prev->rid is a down link iff it points away from the root
        arrived_via_down = not self._is_up(prev, rid)
        going_up = self._is_up(rid, nxt)
        return not (arrived_via_down and going_up)
