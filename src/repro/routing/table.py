"""Table-driven local routing over an explicit turn model.

Routes are shortest paths in the *channel graph*: nodes are directed
same-layer channels, and channel (u -> v) connects to (v -> w) when the
turn model permits the turn at ``v``.  A backward BFS per destination
yields, for every (router, in_port), the minimising next hop.  This is the
machinery behind both up*/down* routing on faulty layers and the
composable-routing baseline's restricted chiplet tables.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.noc.flit import OPPOSITE, Port
from repro.routing.base import MESH_DIRS, TurnModel
from repro.topology.chiplet import SystemTopology


class TableRouting:
    """Precomputed local routing for one layer (a set of router ids)."""

    def __init__(
        self,
        topo: SystemTopology,
        members: List[int],
        turn_model: TurnModel,
    ):
        self.topo = topo
        self.members = set(members)
        self.turn_model = turn_model
        #: neighbour over a healthy link: (rid, out_port) -> nbr
        self.neighbor_of: Dict[Tuple[int, Port], int] = {}
        for rid in members:
            for nbr, port in topo.layer_neighbors(rid):
                self.neighbor_of[(rid, port)] = nbr
        #: distance-to-destination per channel: dist[dst][(u, port)] is the
        #: hop count from the head of channel (u --port--> v) to dst.
        self._dist: Dict[int, Dict[Tuple[int, Port], int]] = {}
        for dst in members:
            self._dist[dst] = self._backward_bfs(dst)

    # ------------------------------------------------------------------ #

    def _incoming(self, rid: int) -> List[Tuple[int, Port]]:
        """Channels (u, port) whose head is ``rid``."""
        result = []
        for (u, port), v in self.neighbor_of.items():
            if v == rid:
                result.append((u, port))
        return result

    def _backward_bfs(self, dst: int) -> Dict[Tuple[int, Port], int]:
        """dist[(u, port)] = remaining hops after traversing u->nbr to
        reach ``dst`` (1 when nbr == dst and ejection is allowed)."""
        dist: Dict[Tuple[int, Port], int] = {}
        frontier: deque = deque()
        for u, port in self._incoming(dst):
            in_port_at_dst = OPPOSITE[port]
            if self.turn_model.allowed(dst, in_port_at_dst, Port.LOCAL):
                dist[(u, port)] = 1
                frontier.append((u, port))
        while frontier:
            u, port = frontier.popleft()
            d = dist[(u, port)]
            # predecessors: channels (w, p) with head u whose turn into
            # (u, port) is allowed
            for w, p in self._incoming(u):
                if (w, p) in dist:
                    continue
                if self.turn_model.allowed(u, OPPOSITE[p], port):
                    dist[(w, p)] = d + 1
                    frontier.append((w, p))
        return dist

    # ------------------------------------------------------------------ #

    def next_port(self, rid: int, in_port: Port, dst: int) -> Port:
        """Table-routed next hop; raises when the turn model forbids
        every path (used as a design-time connectivity check)."""
        port = self.try_next_port(rid, in_port, dst)
        if port is None:
            raise ValueError(
                f"no route from router {rid} (in via {in_port.name}) to "
                f"{dst} under the turn model"
            )
        return port

    def try_next_port(self, rid: int, in_port: Port, dst: int) -> Optional[Port]:
        """Like :meth:`next_port`, but ``None`` when unroutable."""
        if rid == dst:
            return Port.LOCAL
        dist = self._dist[dst]
        best: Optional[Port] = None
        best_d = None
        for port in MESH_DIRS:
            if (rid, port) not in self.neighbor_of:
                continue
            if not self.turn_model.allowed(rid, in_port, port):
                continue
            d = dist.get((rid, port))
            if d is None:
                continue
            if best_d is None or d < best_d:
                best, best_d = port, d
        return best

    def path_length(self, src: int, in_port: Port, dst: int) -> Optional[int]:
        """Hop count of the routed path, or ``None`` if unreachable."""
        if src == dst:
            return 0
        hops = 0
        rid, port_in = src, in_port
        while rid != dst:
            port = self.try_next_port(rid, port_in, dst)
            if port is None:
                return None
            nbr = self.neighbor_of[(rid, port)]
            port_in = OPPOSITE[port]
            rid = nbr
            hops += 1
            if hops > 4 * len(self.members):
                raise RuntimeError("routing table produced a loop")
        return hops

    def walk(self, src: int, in_port: Port, dst: int) -> List[Tuple[int, Port]]:
        """The (router, out_port) sequence of the routed path."""
        steps: List[Tuple[int, Port]] = []
        rid, port_in = src, in_port
        while rid != dst:
            port = self.try_next_port(rid, port_in, dst)
            if port is None:
                raise ValueError(f"unroutable: {src} -> {dst}")
            steps.append((rid, port))
            rid = self.neighbor_of[(rid, port)]
            port_in = OPPOSITE[port]
            if len(steps) > 4 * len(self.members):
                raise RuntimeError("routing table produced a loop")
        return steps
