"""Chiplet-based system topologies (paper Fig. 1).

A :class:`SystemTopology` is a pure description — router ids, layers, link
list, vertical-link attachments — consumed by
:class:`repro.noc.network.Network` to build the runtime system and by the
routing layer to build tables.

Router id space: interposer routers come first (row-major), then each
chiplet's routers (row-major, chiplets in index order).  NIs attach to
every router; synthetic traffic by default addresses chiplet nodes only
(the 64 cores of the baseline system), while coherence workloads also use
interposer NIs as directories (Table II: "8 directories on the
interposer").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.noc.flit import OPPOSITE, Port
from repro.topology.mesh import (
    Coord,
    boundary_positions,
    coord_of,
    index_of,
    mesh_links,
)


@dataclass(frozen=True)
class LinkSpec:
    """One unidirectional link: ``src`` router's ``src_port`` to ``dst``
    router's ``dst_port``."""

    src: int
    dst: int
    src_port: Port
    dst_port: Port


@dataclass
class SystemTopology:
    """Description of a chiplet-based system."""

    interposer_shape: Tuple[int, int]
    chiplet_shapes: List[Tuple[int, int]]
    #: chiplet placement: chiplet i covers interposer rows/cols starting here
    chiplet_origins: List[Coord]
    n_interposer: int = 0
    n_routers: int = 0
    coords: Dict[int, Coord] = field(default_factory=dict)
    chiplet_of: Dict[int, int] = field(default_factory=dict)  # -1 = interposer
    links: List[LinkSpec] = field(default_factory=list)
    #: boundary chiplet router -> interposer router underneath
    attach_down: Dict[int, int] = field(default_factory=dict)
    #: interposer router -> list of boundary routers above (1 or 2)
    attach_up: Dict[int, List[int]] = field(default_factory=dict)
    #: interposer port used to reach each boundary router
    up_port_of: Dict[int, Port] = field(default_factory=dict)
    faulty: Set[Tuple[int, int]] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # id helpers

    def interposer_router(self, coord: Coord) -> int:
        """Router id at an interposer coordinate."""
        return index_of(coord, self.interposer_shape[1])

    def chiplet_router(self, chiplet: int, coord: Coord) -> int:
        """Router id at a chiplet-local coordinate."""
        base = self.n_interposer
        for c in range(chiplet):
            rows, cols = self.chiplet_shapes[c]
            base += rows * cols
        return base + index_of(coord, self.chiplet_shapes[chiplet][1])

    def chiplet_routers(self, chiplet: int) -> List[int]:
        """All router ids of one chiplet, row-major."""
        rows, cols = self.chiplet_shapes[chiplet]
        first = self.chiplet_router(chiplet, (0, 0))
        return list(range(first, first + rows * cols))

    @property
    def n_chiplets(self) -> int:
        """How many chiplets the system integrates."""
        return len(self.chiplet_shapes)

    @property
    def interposer_routers(self) -> List[int]:
        """All interposer router ids."""
        return list(range(self.n_interposer))

    @property
    def chiplet_nodes(self) -> List[int]:
        """All chiplet router ids (the cores of the system)."""
        return list(range(self.n_interposer, self.n_routers))

    def boundary_routers(self, chiplet: Optional[int] = None) -> List[int]:
        """Boundary router ids, optionally restricted to one chiplet."""
        rids = sorted(self.attach_down)
        if chiplet is None:
            return rids
        return [r for r in rids if self.chiplet_of[r] == chiplet]

    def is_interposer(self, rid: int) -> bool:
        """Layer test by router id."""
        return rid < self.n_interposer

    def layer_neighbors(self, rid: int) -> List[Tuple[int, Port]]:
        """Same-layer (mesh) neighbours via healthy links."""
        result = []
        for link in self.links:
            if link.src == rid and link.src_port in (
                Port.NORTH,
                Port.SOUTH,
                Port.EAST,
                Port.WEST,
            ):
                if (link.src, link.dst) not in self.faulty:
                    result.append((link.dst, link.src_port))
        return result

    def mesh_link_pairs(self) -> List[Tuple[int, int]]:
        """All bidirectional same-layer link pairs (for fault injection),
        as (low_rid, high_rid) tuples, deduplicated."""
        pairs = set()
        for link in self.links:
            if link.src_port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
                pairs.add((min(link.src, link.dst), max(link.src, link.dst)))
        return sorted(pairs)


def build_system(
    interposer_shape: Tuple[int, int] = (4, 4),
    chiplet_shape: Tuple[int, int] = (4, 4),
    chiplet_grid: Tuple[int, int] = (2, 2),
    boundary_per_chiplet: int = 4,
    boundary_coords: Optional[Sequence[Coord]] = None,
) -> SystemTopology:
    """Build a chiplet-based system.

    ``chiplet_grid`` arranges identical chiplets over the interposer; each
    chiplet covers an equal rectangular footprint of interposer routers.
    The default arguments produce the paper's baseline system: a 4x4
    interposer with four 4x4 chiplets, four boundary routers each.
    """
    irows, icols = interposer_shape
    grows, gcols = chiplet_grid
    if irows % grows or icols % gcols:
        raise ValueError("chiplet grid must evenly tile the interposer")
    frows, fcols = irows // grows, icols // gcols  # footprint per chiplet

    n_chiplets = grows * gcols
    crows, ccols = chiplet_shape
    topo = SystemTopology(
        interposer_shape=interposer_shape,
        chiplet_shapes=[chiplet_shape] * n_chiplets,
        chiplet_origins=[
            (g // gcols * frows, g % gcols * fcols) for g in range(n_chiplets)
        ],
    )
    topo.n_interposer = irows * icols
    topo.n_routers = topo.n_interposer + n_chiplets * crows * ccols

    # coordinates and layers
    for rid in range(topo.n_interposer):
        topo.coords[rid] = coord_of(rid, icols)
        topo.chiplet_of[rid] = -1
    for chip in range(n_chiplets):
        for rid in topo.chiplet_routers(chip):
            local = rid - topo.chiplet_router(chip, (0, 0))
            topo.coords[rid] = coord_of(local, ccols)
            topo.chiplet_of[rid] = chip

    # mesh links
    for src_c, dst_c, port in mesh_links(irows, icols):
        topo.links.append(
            LinkSpec(
                topo.interposer_router(src_c),
                topo.interposer_router(dst_c),
                port,
                OPPOSITE[port],
            )
        )
    for chip in range(n_chiplets):
        for src_c, dst_c, port in mesh_links(crows, ccols):
            topo.links.append(
                LinkSpec(
                    topo.chiplet_router(chip, src_c),
                    topo.chiplet_router(chip, dst_c),
                    port,
                    OPPOSITE[port],
                )
            )

    # vertical links
    if boundary_coords is None:
        boundary_coords = boundary_positions(crows, ccols, boundary_per_chiplet)
    if len(boundary_coords) not in (len(set(boundary_coords)),):
        raise ValueError("duplicate boundary coordinates")
    per_footprint = len(boundary_coords) / (frows * fcols)
    if per_footprint > 2:
        raise ValueError(
            "at most two vertical links per interposer router are supported"
        )
    for chip in range(n_chiplets):
        origin = topo.chiplet_origins[chip]
        footprint = [
            topo.interposer_router((origin[0] + r, origin[1] + c))
            for r in range(frows)
            for c in range(fcols)
        ]
        for i, bc in enumerate(sorted(boundary_coords)):
            boundary = topo.chiplet_router(chip, bc)
            iposer = footprint[i % len(footprint)]
            _add_vertical(topo, boundary, iposer)
    return topo


def _add_vertical(topo: SystemTopology, boundary: int, iposer: int) -> None:
    existing = topo.attach_up.setdefault(iposer, [])
    up_port = Port.UP if not existing else Port.UP2
    if len(existing) >= 2:
        raise ValueError(f"interposer router {iposer} already has two up links")
    existing.append(boundary)
    topo.attach_down[boundary] = iposer
    topo.up_port_of[boundary] = up_port
    # up direction: interposer -> boundary, enters the chiplet's DOWN port
    topo.links.append(LinkSpec(iposer, boundary, up_port, Port.DOWN))
    # down direction: boundary -> interposer
    topo.links.append(LinkSpec(boundary, iposer, Port.DOWN, up_port))


def build_heterogeneous_system(
    interposer_shape: Tuple[int, int],
    chiplets: Sequence[dict],
) -> SystemTopology:
    """Build a system of *differently shaped* chiplets (topology
    modularity, Table I): each entry of ``chiplets`` gives

    * ``shape``    — the chiplet's mesh (rows, cols);
    * ``origin``   — the top-left interposer coordinate of its footprint;
    * ``footprint``— the footprint's (rows, cols) of interposer routers;
    * ``boundary`` — boundary-router coordinates within the chiplet.

    Footprints must not overlap; each carries at most two vertical links
    per interposer router.
    """
    irows, icols = interposer_shape
    topo = SystemTopology(
        interposer_shape=interposer_shape,
        chiplet_shapes=[tuple(c["shape"]) for c in chiplets],
        chiplet_origins=[tuple(c["origin"]) for c in chiplets],
    )
    topo.n_interposer = irows * icols
    topo.n_routers = topo.n_interposer + sum(
        r * c for r, c in topo.chiplet_shapes
    )

    for rid in range(topo.n_interposer):
        topo.coords[rid] = coord_of(rid, icols)
        topo.chiplet_of[rid] = -1
    for chip, spec in enumerate(chiplets):
        crows, ccols = spec["shape"]
        base = topo.chiplet_router(chip, (0, 0))
        for rid in range(base, base + crows * ccols):
            topo.coords[rid] = coord_of(rid - base, ccols)
            topo.chiplet_of[rid] = chip

    for src_c, dst_c, port in mesh_links(irows, icols):
        topo.links.append(
            LinkSpec(
                topo.interposer_router(src_c),
                topo.interposer_router(dst_c),
                port,
                OPPOSITE[port],
            )
        )
    claimed = set()
    for chip, spec in enumerate(chiplets):
        crows, ccols = spec["shape"]
        for src_c, dst_c, port in mesh_links(crows, ccols):
            topo.links.append(
                LinkSpec(
                    topo.chiplet_router(chip, src_c),
                    topo.chiplet_router(chip, dst_c),
                    port,
                    OPPOSITE[port],
                )
            )
        orow, ocol = spec["origin"]
        frows, fcols = spec["footprint"]
        footprint = []
        for r in range(frows):
            for c in range(fcols):
                coord = (orow + r, ocol + c)
                if not (0 <= coord[0] < irows and 0 <= coord[1] < icols):
                    raise ValueError(f"footprint of chiplet {chip} leaves the interposer")
                if coord in claimed:
                    raise ValueError(f"footprints overlap at interposer {coord}")
                claimed.add(coord)
                footprint.append(topo.interposer_router(coord))
        boundary_coords = sorted(tuple(b) for b in spec["boundary"])
        if len(boundary_coords) > 2 * len(footprint):
            raise ValueError(
                f"chiplet {chip}: too many boundary routers for its footprint"
            )
        for i, bc in enumerate(boundary_coords):
            if not (0 <= bc[0] < crows and 0 <= bc[1] < ccols):
                raise ValueError(f"boundary {bc} outside chiplet {chip}")
            _add_vertical(topo, topo.chiplet_router(chip, bc), footprint[i % len(footprint)])
    return topo


def baseline_system() -> SystemTopology:
    """The paper's baseline: 4x4 interposer, four 4x4 chiplets, 4 boundary
    routers per chiplet (Fig. 1, Table II)."""
    return build_system()


def large_system() -> SystemTopology:
    """The 128-node system of Fig. 9: 4x8 interposer, eight 4x4 chiplets."""
    return build_system(
        interposer_shape=(4, 8),
        chiplet_grid=(2, 4),
    )


def mc_2x1_system() -> SystemTopology:
    """Smallest model-checkable system: a 1x2 interposer carrying two 4x1
    column chiplets, boundary routers at both column ends.

    The column shape makes every intra-chiplet route share the single
    vertical mesh path, which is what glues entry->exit channel chains
    into cycles — the same anatomy as the baseline's witness cycles, at a
    state-space size a bounded model checker can exhaust.  Boundary
    bindings are deterministic (no hop-distance ties), so the certifier
    and the model checker see the identical routing function regardless
    of seed.
    """
    return build_system(
        interposer_shape=(1, 2),
        chiplet_shape=(4, 1),
        chiplet_grid=(1, 2),
        boundary_coords=[(0, 0), (3, 0)],
    )


def mc_2x2_system() -> SystemTopology:
    """Second model-checking preset: a 2x2 interposer mesh with four 4x1
    column chiplets in a 2x2 grid — the smallest system whose *interposer*
    layer is a 2D mesh, exercising interposer turns in the explored state
    space while staying exhaustible."""
    return build_system(
        interposer_shape=(2, 2),
        chiplet_shape=(4, 1),
        chiplet_grid=(2, 2),
        boundary_coords=[(0, 0), (3, 0)],
    )


def star_system(n_chiplets: int = 4) -> SystemTopology:
    """A passive-substrate star-like system (Sec. VI-B): a central I/O
    chiplet plays the role of the interposer.  Network-topologically this is
    identical to an active-interposer system, so we model the central
    chiplet as the 'interposer' layer."""
    if n_chiplets == 4:
        return build_system()
    if n_chiplets == 8:
        return large_system()
    raise ValueError("star systems are provided for 4 or 8 peripheral chiplets")
