"""Fault injection for the Fig. 11 irregular-topology experiments.

Faults are injected on same-layer mesh links (both directions of a link
pair fail together, as in ARIADNE-style fault models).  Vertical links are
kept healthy so every chiplet stays attached to the interposer; layer
connectivity is preserved by construction — candidate faults that would
disconnect a layer are rejected and redrawn.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

import networkx as nx

from repro.topology.chiplet import SystemTopology


def _layer_graph(topo: SystemTopology, exclude: Set[Tuple[int, int]]) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(topo.n_routers))
    for low, high in topo.mesh_link_pairs():
        if (low, high) not in exclude:
            graph.add_edge(low, high)
    return graph


def _layers_connected(topo: SystemTopology, exclude: Set[Tuple[int, int]]) -> bool:
    graph = _layer_graph(topo, exclude)
    groups = [topo.interposer_routers] + [
        topo.chiplet_routers(c) for c in range(topo.n_chiplets)
    ]
    for members in groups:
        sub = graph.subgraph(members)
        if not nx.is_connected(sub):
            return False
    return True


def inject_faults(
    topo: SystemTopology, n_faults: int, rng: random.Random
) -> SystemTopology:
    """Mark ``n_faults`` random mesh link pairs faulty, preserving the
    connectivity of every layer.  Mutates and returns ``topo``.

    Raises ``ValueError`` if no valid fault set of the requested size can
    be found after a bounded number of attempts.
    """
    candidates = topo.mesh_link_pairs()
    if n_faults > len(candidates):
        raise ValueError(f"cannot fail {n_faults} of {len(candidates)} links")
    for _attempt in range(200):
        chosen = set(rng.sample(candidates, n_faults))
        if _layers_connected(topo, chosen):
            for low, high in chosen:
                topo.faulty.add((low, high))
                topo.faulty.add((high, low))
            return topo
    raise ValueError(
        f"could not find a connectivity-preserving set of {n_faults} faults"
    )


def healthy_mesh_neighbors(topo: SystemTopology, rid: int):
    """Same-layer neighbours reachable over healthy links."""
    return topo.layer_neighbors(rid)
