"""Chiplet-based system topologies and fault injection."""

from repro.topology.chiplet import (
    SystemTopology,
    baseline_system,
    build_heterogeneous_system,
    build_system,
    large_system,
    star_system,
)
from repro.topology.faults import inject_faults

__all__ = [
    "SystemTopology",
    "baseline_system",
    "build_heterogeneous_system",
    "build_system",
    "inject_faults",
    "large_system",
    "star_system",
]
