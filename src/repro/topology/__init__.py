"""Chiplet-based system topologies and fault injection."""

from repro.topology.chiplet import (
    SystemTopology,
    baseline_system,
    build_heterogeneous_system,
    build_system,
    large_system,
    star_system,
)
from repro.topology.faults import inject_faults
from repro.topology.registry import (
    get_topology,
    register_topology,
    topology_name_of,
    topology_names,
)

__all__ = [
    "SystemTopology",
    "baseline_system",
    "build_heterogeneous_system",
    "build_system",
    "get_topology",
    "inject_faults",
    "large_system",
    "register_topology",
    "star_system",
    "topology_name_of",
    "topology_names",
]
