"""Mesh geometry helpers shared by the chiplet and interposer layers."""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.flit import OPPOSITE, Port

Coord = Tuple[int, int]


def coord_of(index: int, cols: int) -> Coord:
    """Row-major (row, col) of a mesh-local index."""
    return divmod(index, cols)


def index_of(coord: Coord, cols: int) -> int:
    """Row-major index of a (row, col) coordinate."""
    return coord[0] * cols + coord[1]


def neighbor(coord: Coord, port: Port, rows: int, cols: int) -> Coord:
    """Mesh neighbour in a direction, or ``None`` at the edge.

    Row 0 is the *south* edge, matching the paper's Fig. 2 numbering where
    router 0 is bottom-left and router indices grow northward.
    """
    r, c = coord
    if port == Port.NORTH:
        r += 1
    elif port == Port.SOUTH:
        r -= 1
    elif port == Port.EAST:
        c += 1
    elif port == Port.WEST:
        c -= 1
    else:
        raise ValueError(f"{port!r} is not a mesh direction")
    if 0 <= r < rows and 0 <= c < cols:
        return (r, c)
    return None


def mesh_links(rows: int, cols: int) -> List[Tuple[Coord, Coord, Port]]:
    """All unidirectional mesh links as (src, dst, src_port) triples."""
    links = []
    for r in range(rows):
        for c in range(cols):
            for port in (Port.NORTH, Port.EAST):
                nxt = neighbor((r, c), port, rows, cols)
                if nxt is not None:
                    links.append(((r, c), nxt, port))
                    links.append((nxt, (r, c), OPPOSITE[port]))
    return links


def xy_next_port(src: Coord, dst: Coord) -> Port:
    """Dimension-order (X-then-Y) next hop direction."""
    if src == dst:
        return Port.LOCAL
    if src[1] != dst[1]:
        return Port.EAST if dst[1] > src[1] else Port.WEST
    return Port.NORTH if dst[0] > src[0] else Port.SOUTH


def manhattan(a: Coord, b: Coord) -> int:
    """L1 distance between two mesh coordinates."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def boundary_positions(rows: int, cols: int, count: int) -> List[Coord]:
    """Canonical boundary-router placements for a chiplet mesh.

    Matches the baseline system of Fig. 1 (4 boundary routers over the
    chiplet's 2x2 interposer footprint) and the Fig. 10 sensitivity points
    (2 and 8 boundary routers per chiplet).
    """
    if rows != 4 or cols != 4:
        raise ValueError(
            "canonical boundary placements are defined for 4x4 chiplets; "
            "pass explicit positions for other shapes"
        )
    # Fig. 1 places the boundary routers on the chiplet's outer rows
    # (columns 1-2 of rows 0 and 3).  This placement matters: it makes
    # inbound (up -> dest) and outbound (src -> down) flows share column
    # channels in the same direction, which is exactly what permits the
    # integration-induced dependency chains of Fig. 3.
    placements = {
        2: [(0, 1), (3, 2)],
        4: [(0, 1), (0, 2), (3, 1), (3, 2)],
        8: [
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
            (3, 0),
            (3, 1),
            (3, 2),
            (3, 3),
        ],
    }
    if count not in placements:
        raise ValueError(f"unsupported boundary-router count {count} (use 2, 4 or 8)")
    return placements[count]
