"""Named topology factories.

The experiment runner ships work to subprocess workers as plain JSON-able
specs, so a sweep point cannot carry a topology *object* — it carries a
registered topology *name* that the worker resolves back to a factory.
The registry also gives the CLI its ``--topology`` choices.

Factories must be zero-argument and deterministic (same topology every
call); parameterised builders register a closure per named variant.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.topology.chiplet import (
    SystemTopology,
    baseline_system,
    large_system,
    mc_2x1_system,
    mc_2x2_system,
)

TopologyFactory = Callable[[], SystemTopology]

_TOPOLOGIES: Dict[str, TopologyFactory] = {}


def register_topology(name: str, factory: TopologyFactory) -> TopologyFactory:
    """Register a zero-argument topology factory under ``name``."""
    if name in _TOPOLOGIES:
        raise ValueError(f"topology {name!r} is already registered")
    _TOPOLOGIES[name] = factory
    return factory


def get_topology(name: str) -> TopologyFactory:
    """Factory for a registered topology name."""
    try:
        return _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; registered topologies: "
            f"{', '.join(topology_names())}"
        ) from None


def topology_names() -> Tuple[str, ...]:
    """Every registered topology name, in registration order."""
    return tuple(_TOPOLOGIES)


def topology_name_of(factory: TopologyFactory) -> Optional[str]:
    """Reverse lookup by factory identity (None when unregistered).

    Experiment harnesses accept arbitrary callables for ad-hoc topologies;
    only registered ones can be fanned out to workers or cached, so the
    harness probes here and falls back to in-process execution otherwise.
    """
    for name, registered in _TOPOLOGIES.items():
        if registered is factory:
            return name
    return None


register_topology("baseline", baseline_system)
register_topology("large", large_system)
register_topology("mc-2x1", mc_2x1_system)
register_topology("mc-2x2", mc_2x2_system)
