"""Wall-clock performance harness for the simulator core.

Times a set of representative configurations under all three per-cycle
engines — the vectorized struct-of-arrays datapath (``datapath="vector"``,
the default), the scalar active-set core (``datapath="legacy"``) and the
debug full sweep (``NocConfig.full_sweep=True``) — asserts that all modes
produce bit-identical results (via
:func:`repro.metrics.stats.result_fingerprint`), and writes the
measurements to ``BENCH_core.json`` (``configs`` rows plus the
``datapath`` summary section).

The full-sweep mode still shares the route cache, incremental occupancy
counters and inlined delivery loops with the other engines, so the
in-repo mode-vs-mode ratio *understates* the gain over the pre-change
core.  Pass ``--baseline-rev <git-rev>`` to additionally check out the
pre-change tree into a temporary git worktree and time the low-load
configuration against it in a subprocess — that is the number the
"2x vs pre-change core" acceptance claim is based on.

``--profile [CONFIG]`` wraps a single config (default ``uniform_r0.08``)
in :mod:`cProfile` under the vector engine and prints the top-20
cumulative hot spots, so perf work starts from data instead of guesses.

Entry points: ``python -m repro bench`` or ``benchmarks/perf/run.py``
(``make bench`` runs the smoke variant).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.metrics.stats import result_fingerprint
from repro.noc.config import NocConfig
from repro.sim.experiment import make_scheme
from repro.sim.presets import large_topology, table2_config, table2_upp_config
from repro.sim.simulator import Simulation
from repro.topology.chiplet import baseline_system
from repro.traffic.synthetic import install_synthetic_traffic

#: name of the low-load config used for the baseline-rev comparison.
LOW_LOAD_CONFIG = "uniform_r0.02"

#: engine modes timed against each other; every runner takes one of these.
MODES = ("vector", "legacy", "full_sweep")

#: configs in the saturated regime the vector datapath targets, summarized
#: in the report's ``datapath`` section.
SATURATED_CONFIGS = (
    "uniform_r0.05",
    "uniform_r0.08",
    "uniform_r0.10",
    "hotspot_r0.06",
    "coherence_canneal",
)


def engine_config(cfg: NocConfig, mode: str) -> NocConfig:
    """Rewrite an engine-selection mode into a config.

    ``"vector"`` / ``"legacy"`` select the datapath; ``"full_sweep"`` is
    the debug reference sweep (which always runs the scalar core).
    """
    if mode not in MODES:
        raise ValueError(f"unknown engine mode {mode!r} (expected {MODES})")
    return dataclasses.replace(
        cfg,
        datapath="vector" if mode == "vector" else "legacy",
        full_sweep=mode == "full_sweep",
    )


def _smoke_cycles(default: int) -> int:
    """Measured-cycle budget for saturated configs under ``--smoke``.

    ``REPRO_BENCH_SMOKE_CYCLES`` caps (never raises) the budget so CI's
    ``make bench`` smoke pass spends less time in the saturated regime;
    unset, the default budget is used.  All three engine modes see the
    same cap, so the bit-identity cross-check is unaffected.
    """
    raw = os.environ.get("REPRO_BENCH_SMOKE_CYCLES")
    if not raw:
        return default
    try:
        cap = int(raw)
    except ValueError:
        raise SystemExit(
            f"bench: REPRO_BENCH_SMOKE_CYCLES must be an integer, got {raw!r}"
        )
    if cap < 1:
        raise SystemExit("bench: REPRO_BENCH_SMOKE_CYCLES must be >= 1")
    return min(cap, default)


def _run_uniform(rate: float, mode: str, smoke: bool, pattern: str = "uniform_random"):
    """One open-loop synthetic-traffic run on the 8-chiplet large system."""
    cfg = engine_config(table2_config(), mode)
    sim = Simulation(large_topology(), cfg, make_scheme("upp", table2_upp_config()))
    install_synthetic_traffic(sim.network, pattern, rate)
    warmup, measure = (100, 400) if smoke else (500, 2000)
    if smoke and (pattern == "hotspot" or rate >= 0.05):
        measure = _smoke_cycles(measure)
    t0 = time.perf_counter()
    result = sim.run(warmup, measure)
    return time.perf_counter() - t0, result


def _run_coherence(mode: str, smoke: bool):
    """One closed-loop coherence workload (canneal) on the baseline system."""
    from repro.traffic.coherence import install_coherence_workload, workload_finished
    from repro.traffic.workloads import get_workload

    cfg = engine_config(table2_config(), mode)
    profile = get_workload("canneal", scale=0.05 if smoke else 0.25)
    sim = Simulation(baseline_system(), cfg, make_scheme("upp", table2_upp_config()))
    endpoints = install_coherence_workload(sim.network, profile)
    budget = _smoke_cycles(400_000) if smoke else 400_000
    t0 = time.perf_counter()
    result = sim.run(
        warmup=0,
        measure=budget,
        stop_when=lambda net: workload_finished(endpoints),
        max_cycles=budget,
    )
    return time.perf_counter() - t0, result


def _run_deadlock_recovery(mode: str, smoke: bool):
    """Adversarial traffic that deadlocks an unprotected 1-VC system;
    UPP must detect and recover (the paper's core scenario)."""
    from repro.traffic.adversarial import install_adversarial_traffic, witness_flows

    cfg = engine_config(NocConfig(vcs_per_vnet=1), mode)
    sim = Simulation(
        baseline_system(), cfg, make_scheme("upp", table2_upp_config()),
        watchdog_window=2500,
    )
    install_adversarial_traffic(sim.network, witness_flows(sim.network))
    measure = 3000 if smoke else 10_000
    t0 = time.perf_counter()
    result = sim.run(warmup=0, measure=measure)
    return time.perf_counter() - t0, result


#: (name, description, runner) for every benchmark configuration.  A
#: runner takes ``(mode, smoke)`` with ``mode`` one of :data:`MODES`.
CONFIGS: List[tuple] = [
    (
        "uniform_r0.02",
        "8-chiplet large system, UPP, uniform random @ 0.02 flits/node/cycle",
        lambda mode, smoke: _run_uniform(0.02, mode, smoke),
    ),
    (
        "uniform_r0.05",
        "8-chiplet large system, UPP, uniform random @ 0.05 flits/node/cycle",
        lambda mode, smoke: _run_uniform(0.05, mode, smoke),
    ),
    (
        "uniform_r0.08",
        "8-chiplet large system, UPP, uniform random @ 0.08 flits/node/cycle",
        lambda mode, smoke: _run_uniform(0.08, mode, smoke),
    ),
    (
        "uniform_r0.10",
        "8-chiplet large system, UPP, uniform random @ 0.10 flits/node/cycle "
        "(past saturation)",
        lambda mode, smoke: _run_uniform(0.10, mode, smoke),
    ),
    (
        "hotspot_r0.06",
        "8-chiplet large system, UPP, 30% hotspot traffic @ 0.06 "
        "flits/node/cycle (tree-shaped saturation)",
        lambda mode, smoke: _run_uniform(0.06, mode, smoke, pattern="hotspot"),
    ),
    (
        "coherence_canneal",
        "closed-loop MESI coherence workload (canneal) on the baseline system",
        lambda mode, smoke: _run_coherence(mode, smoke),
    ),
    (
        "deadlock_recovery",
        "adversarial 1-VC deadlock provoked and recovered by UPP",
        lambda mode, smoke: _run_deadlock_recovery(mode, smoke),
    ),
]

#: subprocess script used to time an arbitrary checkout of the low-load
#: config (argv: <repeats> <warmup> <measure>).
_BASELINE_SCRIPT = """
import sys, time
from repro.sim.presets import table2_config, table2_upp_config, large_topology
from repro.sim.simulator import Simulation
from repro.sim.experiment import make_scheme
from repro.traffic.synthetic import install_synthetic_traffic
repeats, warmup, measure = (int(a) for a in sys.argv[1:4])
best = float("inf")
for _ in range(repeats):
    sim = Simulation(large_topology(), table2_config(),
                     make_scheme("upp", table2_upp_config()))
    install_synthetic_traffic(sim.network, "uniform_random", 0.02)
    t0 = time.perf_counter()
    res = sim.run(warmup, measure)
    best = min(best, time.perf_counter() - t0)
print(best, res.summary["packets"])
"""


def _time_baseline_rev(rev: str, repeats: int, smoke: bool) -> Dict[str, object]:
    """Check out ``rev`` into a temp worktree and time the low-load config."""
    warmup, measure = (100, 400) if smoke else (500, 2000)
    with tempfile.TemporaryDirectory(prefix="repro-bench-base-") as tmp:
        tree = str(Path(tmp) / "worktree")
        subprocess.run(
            ["git", "worktree", "add", "--detach", tree, rev],
            check=True, capture_output=True,
        )
        try:
            proc = subprocess.run(
                [sys.executable, "-c", _BASELINE_SCRIPT,
                 str(repeats), str(warmup), str(measure)],
                check=True, capture_output=True, text=True,
                env={"PYTHONPATH": str(Path(tree) / "src"), "PATH": "/usr/bin:/bin"},
            )
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", tree],
                check=False, capture_output=True,
            )
    secs, packets = proc.stdout.split()
    return {"rev": rev, "seconds": float(secs), "packets": int(packets)}


def _bench_parallel_sweep(smoke: bool, jobs: int = 4) -> Dict[str, object]:
    """Time one latency sweep serially, fanned out over ``jobs`` workers,
    and replayed warm from the result cache.

    All three series must be bit-identical, and the warm replay must
    execute **zero** simulations.  Rates stay below saturation so the
    serial path cannot stop early and all runs cover every point.
    """
    from repro import api
    from repro.exp import ExperimentRunner, ResultCache
    from repro.sim.experiment import sweep_to_rows

    rates = (0.01, 0.02, 0.03) if smoke else (0.01, 0.02, 0.03, 0.04, 0.05)
    warmup, measure = (200, 600) if smoke else (1000, 4000)
    preset = api.load_preset("baseline")

    def timed(runner: ExperimentRunner):
        t0 = time.perf_counter()
        points = api.run_sweep(
            preset, "upp", "uniform_random", rates,
            warmup=warmup, measure=measure, runner=runner,
        )
        return time.perf_counter() - t0, points

    serial_s, serial_pts = timed(ExperimentRunner(jobs=1))
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        parallel_s, parallel_pts = timed(
            ExperimentRunner(jobs=jobs, cache=ResultCache(tmp))
        )
        warm = ExperimentRunner(jobs=jobs, cache=ResultCache(tmp))
        warm_s, warm_pts = timed(warm)
        warm_stats = warm.stats
    serial_rows = sweep_to_rows(serial_pts)
    if serial_rows != sweep_to_rows(parallel_pts):
        raise AssertionError("parallel sweep diverged from serial")
    if serial_rows != sweep_to_rows(warm_pts):
        raise AssertionError("warm-cache sweep diverged from serial")
    if warm_stats.executed != 0:
        raise AssertionError(
            f"warm cache replay executed {warm_stats.executed} simulation(s); "
            f"expected 0"
        )
    return {
        "description": (
            f"{len(rates)}-point UPP latency sweep on the baseline preset: "
            f"serial vs --jobs {jobs} (cold cache) vs warm cache replay"
        ),
        "rates": list(rates),
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "warm_cache_seconds": round(warm_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "warm_cache_speedup": round(serial_s / warm_s, 3),
        "warm_executed": warm_stats.executed,
        "warm_cached": warm_stats.cached,
        "identical_results": True,
        "cfg_fingerprint": preset.config.fingerprint(),
        "upp_cfg_fingerprint": preset.upp_config.fingerprint(),
    }


def profile_config(name: str, smoke: bool = False, log: Callable[[str], None] = print) -> None:
    """cProfile one config under the vector engine; print top-20 by
    cumulative time so perf work starts from data instead of guesses."""
    import cProfile
    import pstats

    try:
        runner = next(r for n, _d, r in CONFIGS if n == name)
    except StopIteration:
        known = ", ".join(n for n, _d, _r in CONFIGS)
        raise SystemExit(f"bench: unknown --profile config {name!r} (one of: {known})")
    prof = cProfile.Profile()
    prof.enable()
    secs, result = runner("vector", smoke)
    prof.disable()
    log(f"{name}: {secs:.3f}s, {int(result.summary['packets'])} packets, "
        f"{result.cycles} cycles (datapath=vector)")
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative").print_stats(20)


def run_core_bench(
    smoke: bool = False,
    repeat: int = 3,
    baseline_rev: Optional[str] = None,
    log: Callable[[str], None] = print,
) -> Dict[str, object]:
    """Run every config under all three engines and return the report dict.

    Each config is timed ``repeat`` times per mode with the modes
    *interleaved* round-robin (vector, legacy, full-sweep, vector, ...):
    on a shared host the background load drifts on a seconds timescale,
    and back-to-back interleaving spreads that drift across all modes
    instead of letting it land on whichever mode ran last.  Reported
    seconds are the per-mode median; the per-mode sample stdev is
    recorded next to it.
    """
    if smoke:
        repeat = 1
    if repeat < 1:
        raise SystemExit("bench: --repeat must be >= 1")
    if baseline_rev:
        probe = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", baseline_rev + "^{commit}"],
            capture_output=True,
        )
        if probe.returncode != 0:
            raise SystemExit(
                f"bench: --baseline-rev {baseline_rev!r} is not a commit here"
            )
    rows = []
    for name, description, runner in CONFIGS:
        times: Dict[str, List[float]] = {m: [] for m in MODES}
        fps: Dict[str, str] = {}
        results: Dict[str, object] = {}
        for _ in range(repeat):
            for mode in MODES:
                secs, res = runner(mode, smoke)
                times[mode].append(secs)
                fp = result_fingerprint(res)
                if fps.setdefault(mode, fp) != fp:
                    raise AssertionError(
                        f"{name}: {mode} results diverge across repeats"
                    )
                results[mode] = res
        if any(fps[m] != fps["vector"] for m in MODES):
            detail = "\n".join(f"  {m}: {fp}" for m, fp in fps.items())
            raise AssertionError(f"{name}: engine results diverge:\n{detail}")
        seconds = {m: statistics.median(ts) for m, ts in times.items()}
        stdevs = {
            m: (statistics.stdev(ts) if len(ts) > 1 else 0.0)
            for m, ts in times.items()
        }
        res = results["vector"]
        row = {
            "name": name,
            "description": description,
            "vector_seconds": round(seconds["vector"], 4),
            "legacy_seconds": round(seconds["legacy"], 4),
            "full_sweep_seconds": round(seconds["full_sweep"], 4),
            "seconds_stdev": {m: round(stdevs[m], 4) for m in MODES},
            "vector_speedup_vs_full_sweep": round(
                seconds["full_sweep"] / seconds["vector"], 3
            ),
            "vector_speedup_vs_legacy": round(
                seconds["legacy"] / seconds["vector"], 3
            ),
            "identical_results": True,
            "packets": int(res.summary["packets"]),
            "cycles": res.cycles,
            "scalar_fallback_fraction": res.datapath.get(
                "scalar_fallback_fraction"
            ),
        }
        rows.append(row)
        fallback = row["scalar_fallback_fraction"]
        fallback_note = (
            f", {fallback:.0%} scalar-fallback" if fallback is not None else ""
        )
        log(
            f"{name:>20}: vector {seconds['vector']:7.3f}s  "
            f"legacy {seconds['legacy']:7.3f}s  "
            f"full-sweep {seconds['full_sweep']:7.3f}s  "
            f"({row['vector_speedup_vs_full_sweep']:.2f}x vs sweep, "
            f"{row['vector_speedup_vs_legacy']:.2f}x vs legacy, "
            f"identical{fallback_note})"
        )
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    if numpy_version is None:  # pragma: no cover - numpy is a hard dependency
        log(
            f"{'datapath':>20}: numpy unavailable — "
            f'datapath="vector" degraded to the legacy scalar core '
            f"(vector timings above measure the fallback, not the engine)"
        )
    saturated = [r for r in rows if r["name"] in SATURATED_CONFIGS]
    report: Dict[str, object] = {
        "schema": "repro-bench-core/v2",
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": smoke,
        "repeat": repeat,
        # retained alias for readers of the pre---repeat report layout
        "repeats": repeat,
        "config_fingerprints": {
            "table2_1vc": table2_config(1).fingerprint(),
            "table2_4vc": table2_config(4).fingerprint(),
            "upp": table2_upp_config().fingerprint(),
        },
        "configs": rows,
        "datapath": {
            "default_engine": "vector",
            "numpy": numpy_version,
            "vector_fallback": numpy_version is None,
            "saturated_configs": [r["name"] for r in saturated],
            "saturated_vector_speedup_vs_full_sweep": {
                r["name"]: r["vector_speedup_vs_full_sweep"] for r in saturated
            },
            "saturated_vector_speedup_vs_legacy": {
                r["name"]: r["vector_speedup_vs_legacy"] for r in saturated
            },
            "identical_results": all(r["identical_results"] for r in rows),
        },
    }
    par = _bench_parallel_sweep(smoke)
    report["sweep_parallel"] = par
    log(
        f"{'sweep_parallel':>20}: serial {par['serial_seconds']:7.3f}s  "
        f"jobs={par['jobs']} {par['parallel_seconds']:7.3f}s "
        f"({par['parallel_speedup']:.2f}x)  warm cache "
        f"{par['warm_cache_seconds']:7.3f}s ({par['warm_cache_speedup']:.2f}x, "
        f"0 simulations)"
    )
    if baseline_rev:
        base = _time_baseline_rev(baseline_rev, repeat, smoke)
        low = next(r for r in rows if r["name"] == LOW_LOAD_CONFIG)
        if base["packets"] != low["packets"]:
            raise AssertionError(
                f"baseline rev {baseline_rev} delivered {base['packets']} packets "
                f"vs {low['packets']} now — results are not comparable"
            )
        base["speedup_vs_baseline"] = round(
            base["seconds"] / low["vector_seconds"], 3
        )
        report["baseline"] = base
        log(
            f"baseline {baseline_rev}: {base['seconds']:.3f}s on {LOW_LOAD_CONFIG} "
            f"-> {base['speedup_vs_baseline']:.2f}x speedup (packets identical)"
        )
    return report


def main(argv=None) -> int:
    """CLI used by ``python -m repro bench`` and ``benchmarks/perf/run.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench", description="core wall-clock performance harness"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short runs, single repeat (CI)")
    parser.add_argument("--repeat", "--repeats", dest="repeat", type=int,
                        default=3, metavar="N",
                        help="timing repeats per mode, interleaved; the "
                             "report records the per-mode median and stdev")
    parser.add_argument("--out", default="BENCH_core.json",
                        help="report path ('-' for stdout only)")
    parser.add_argument("--baseline-rev", default=None,
                        help="git rev of the pre-change core to time against")
    parser.add_argument("--profile", nargs="?", const="uniform_r0.08",
                        metavar="CONFIG", default=None,
                        help="cProfile one config under the vector engine, "
                             "print the top-20 cumulative hot spots and exit "
                             "(default config: uniform_r0.08)")
    args = parser.parse_args(argv)
    if args.profile is not None:
        profile_config(args.profile, smoke=args.smoke)
        return 0
    if args.out != "-" and not Path(args.out).parent.is_dir():
        parser.error(f"--out directory does not exist: {Path(args.out).parent}")
    report = run_core_bench(
        smoke=args.smoke, repeat=args.repeat, baseline_rev=args.baseline_rev
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out == "-":
        print(text)
    else:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
