# Convenience targets for the UPP reproduction.

PYTHON ?= python

.PHONY: install test check mc witness bench bench-figs bench-full examples examples-smoke service-smoke lint clean

install:
	$(PYTHON) -m pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/unit tests/property

# static deadlock-freedom certification + repo-specific AST lint
check:
	PYTHONPATH=src $(PYTHON) -m repro check --preset all --faults 2
	$(PYTHON) tools/repro_lint.py src

# bounded protocol model checker x certifier matrix, witness replayed
# on the real simulator under both datapaths
mc:
	PYTHONPATH=src $(PYTHON) -m repro mc --replay

# render counterexample witnesses: certifier SCC cycles as channel
# chains, and the model checker's minimal deadlock trace
witness:
	PYTHONPATH=src $(PYTHON) -m repro check --preset baseline --witness
	PYTHONPATH=src $(PYTHON) -m repro mc --preset mc-2x1 --scheme none

# smoke bench caps the saturated configs' measured window so the
# identity cross-check stays fast; unset the knob for real timings
bench:
	PYTHONPATH=src REPRO_BENCH_SMOKE_CYCLES=250 \
	$(PYTHON) -m repro bench --smoke --out -

bench-figs:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_FULL=1 REPRO_BENCH_SCALE=4 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; done

# quick CI variant: the two orchestration examples at reduced scale,
# fanned out over the experiment runner's worker processes
examples-smoke:
	PYTHONPATH=src REPRO_JOBS=2 $(PYTHON) examples/quickstart.py
	PYTHONPATH=src REPRO_JOBS=2 $(PYTHON) examples/coherence_workload.py blackscholes 0.05

# boot a real `python -m repro serve` subprocess and drive it with
# repro.client: submit, stream SSE progress, warm-resubmit (must execute
# zero simulations), graceful SIGTERM shutdown
service-smoke:
	PYTHONPATH=src $(PYTHON) tools/service_smoke.py

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -prune -exec rm -rf {} \;
